package main

import (
	"context"
	"encoding/csv"
	"errors"
	"strconv"
	"strings"
	"testing"

	"extmem/internal/transport"
)

// Smoke: one deterministic decider end to end, agreeing with the
// reference.
func TestRunMultiset(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(context.Background(), []string{"-algo", "multiset", "-m", "8", "-n", "6"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut.String())
	}
	for _, frag := range []string{"instance:", "verdict:  accept", "reference: accept", "resources:"} {
		if !strings.Contains(out.String(), frag) {
			t.Fatalf("output misses %q:\n%s", frag, out.String())
		}
	}
}

func TestRunExplicitInput(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(context.Background(), []string{"-algo", "multiset", "-input", "01#10#10#01#"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "m=2") {
		t.Fatalf("explicit instance not decoded:\n%s", out.String())
	}
}

// The fingerprint fleet: rows in every format, byte-identical across
// worker counts, with the summary on stderr.
func TestFingerprintFleetFormats(t *testing.T) {
	fleet := func(format, parallel string) (string, string) {
		var out, errOut strings.Builder
		args := []string{"-algo", "fingerprint", "-m", "8", "-n", "8", "-yes=false",
			"-trials", "16", "-parallel", parallel, "-format", format, "-seed", "5"}
		if code := run(context.Background(), args, &out, &errOut); code != 0 {
			t.Fatalf("exit %d, stderr:\n%s", code, errOut.String())
		}
		return out.String(), errOut.String()
	}
	for _, format := range []string{"text", "json", "csv"} {
		seq, _ := fleet(format, "1")
		par, errOut := fleet(format, "8")
		if seq != par {
			t.Fatalf("%s rows differ across -parallel:\n--- 1 ---\n%s\n--- 8 ---\n%s", format, seq, par)
		}
		if !strings.Contains(errOut, "fleet: ") || !strings.Contains(errOut, "CI") {
			t.Fatalf("no summary on stderr:\n%s", errOut)
		}
		wantLines := 16
		if format == "csv" {
			wantLines = 17 // header
		}
		if got := strings.Count(par, "\n"); got != wantLines {
			t.Fatalf("%s: %d lines, want %d:\n%s", format, got, wantLines, par)
		}
	}
	// CSV parses and every trial index appears in order.
	out, _ := fleet("csv", "4")
	recs, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range recs[1:] {
		if rec[0] != strconv.Itoa(i) {
			t.Fatalf("row %d has trial %s (rows must stream in trial order)", i, rec[0])
		}
	}
}

// The sharded query mode: the symmetric-difference verdict agrees
// with the reference on yes- and no-instances, and stdout is
// byte-identical at every -shards value (the census on stderr is the
// only place the execution shape may show).
func TestRunRelAlgShardInvariant(t *testing.T) {
	for _, yes := range []string{"true", "false"} {
		runWith := func(shards string) (string, string) {
			var out, errOut strings.Builder
			args := []string{"-algo", "relalg", "-m", "32", "-n", "10", "-seed", "9",
				"-yes=" + yes, "-shards", shards}
			if code := run(context.Background(), args, &out, &errOut); code != 0 {
				t.Fatalf("yes=%s shards=%s: exit %d, stderr:\n%s", yes, shards, code, errOut.String())
			}
			return out.String(), errOut.String()
		}
		ref, refErr := runWith("1")
		want := "verdict:  accept"
		if yes == "false" {
			want = "verdict:  reject"
		}
		for _, frag := range []string{"instance:", "query:", want, "reference:"} {
			if !strings.Contains(ref, frag) {
				t.Fatalf("yes=%s: output misses %q:\n%s", yes, frag, ref)
			}
		}
		if !strings.Contains(refErr, "operator sorts") {
			t.Fatalf("yes=%s: no census on stderr:\n%s", yes, refErr)
		}
		for _, shards := range []string{"2", "4"} {
			if got, _ := runWith(shards); got != ref {
				t.Fatalf("yes=%s: stdout differs at -shards %s:\n--- 1 ---\n%s\n--- %s ---\n%s",
					yes, shards, ref, shards, got)
			}
		}
	}
}

// The process transport reproduces the in-process fleet rows and the
// sharded query output byte for byte — -transport proc is an execution
// choice, never an observable one.
func TestTransportProcInvariant(t *testing.T) {
	runWith := func(args ...string) (string, string) {
		var out, errOut strings.Builder
		if code := run(context.Background(), args, &out, &errOut); code != 0 {
			t.Fatalf("%v: exit %d, stderr:\n%s", args, code, errOut.String())
		}
		return out.String(), errOut.String()
	}
	fleet := []string{"-algo", "fingerprint", "-m", "8", "-n", "8", "-yes=false",
		"-trials", "16", "-seed", "5", "-shards", "2"}
	ref, _ := runWith(fleet...)
	got, _ := runWith(append(fleet, "-transport", "proc")...)
	if got != ref {
		t.Fatalf("fleet rows differ under -transport proc:\n--- inproc ---\n%s\n--- proc ---\n%s", ref, got)
	}
	query := []string{"-algo", "relalg", "-m", "32", "-n", "10", "-seed", "9", "-shards", "2"}
	qref, qrefErr := runWith(query...)
	qgot, qgotErr := runWith(append(query, "-transport", "proc")...)
	if qgot != qref {
		t.Fatalf("relalg stdout differs under -transport proc:\n--- inproc ---\n%s\n--- proc ---\n%s", qref, qgot)
	}
	if qgotErr != qrefErr {
		t.Fatalf("relalg census differs under -transport proc:\n--- inproc ---\n%s\n--- proc ---\n%s", qrefErr, qgotErr)
	}
}

// The TCP transport reproduces the in-process fleet rows and the
// sharded query output byte for byte, with loopback workers standing
// in for remote hosts — -transport tcp is an execution choice, never
// an observable one.
func TestTransportTCPInvariant(t *testing.T) {
	tr, stop, err := transport.LocalWorkers(2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	workers := strings.Join(tr.Workers, ",")
	runWith := func(args ...string) (string, string) {
		var out, errOut strings.Builder
		if code := run(context.Background(), args, &out, &errOut); code != 0 {
			t.Fatalf("%v: exit %d, stderr:\n%s", args, code, errOut.String())
		}
		return out.String(), errOut.String()
	}
	fleet := []string{"-algo", "fingerprint", "-m", "8", "-n", "8", "-yes=false",
		"-trials", "16", "-seed", "5", "-shards", "2"}
	ref, _ := runWith(fleet...)
	got, _ := runWith(append(fleet, "-transport", "tcp", "-workers", workers)...)
	if got != ref {
		t.Fatalf("fleet rows differ under -transport tcp:\n--- inproc ---\n%s\n--- tcp ---\n%s", ref, got)
	}
	query := []string{"-algo", "relalg", "-m", "32", "-n", "10", "-seed", "9", "-shards", "2"}
	qref, qrefErr := runWith(query...)
	qgot, qgotErr := runWith(append(query, "-transport", "tcp", "-workers", workers)...)
	if qgot != qref {
		t.Fatalf("relalg stdout differs under -transport tcp:\n--- inproc ---\n%s\n--- tcp ---\n%s", qref, qgot)
	}
	if qgotErr != qrefErr {
		t.Fatalf("relalg census differs under -transport tcp:\n--- inproc ---\n%s\n--- tcp ---\n%s", qrefErr, qgotErr)
	}
}

// The planned query: -budget hands shape selection to the cost-based
// planner, and stdout still cannot move — byte-identical to every
// fixed -shards value, under both transports.
func TestRunRelAlgBudgetInvariant(t *testing.T) {
	runWith := func(extra ...string) string {
		var out, errOut strings.Builder
		args := append([]string{"-algo", "relalg", "-m", "32", "-n", "10", "-seed", "9"}, extra...)
		if code := run(context.Background(), args, &out, &errOut); code != 0 {
			t.Fatalf("%v: exit %d, stderr:\n%s", extra, code, errOut.String())
		}
		return out.String()
	}
	ref := runWith("-shards", "2")
	for _, extra := range [][]string{
		{"-budget", "256"},
		{"-budget", "16384", "-budget-tapes", "12", "-budget-shards", "8"},
		{"-budget", "256", "-transport", "proc"},
	} {
		if got := runWith(extra...); got != ref {
			t.Fatalf("stdout differs under %v:\n--- fixed ---\n%s\n--- planned ---\n%s", extra, ref, got)
		}
	}
}

func TestFleetRejectsOtherAlgos(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(context.Background(), []string{"-algo", "sort", "-trials", "5"}, &out, &errOut); code != 1 {
		t.Fatalf("fleet on sort: exit %d", code)
	}
}

// Malformed flags are rejected up front with a one-line error and
// exit 2; only errors past validation (bad instance data) exit 1.
func TestFlagAndAlgoErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
		frag string // required stderr fragment; "" skips the check
	}{
		{"bad flag", []string{"-nonsense"}, 2, ""},
		{"unknown algo", []string{"-algo", "bogus"}, 2, `unknown -algo "bogus"`},
		{"unknown format", []string{"-format", "xml"}, 2, `unknown -format "xml"`},
		{"zero trials", []string{"-trials", "0"}, 2, "-trials must be >= 1"},
		{"negative parallel", []string{"-parallel", "-3"}, 2, "-parallel must be >= 1"},
		{"zero shards", []string{"-shards", "0"}, 2, "-shards must be >= 1"},
		{"bad transport", []string{"-transport", "smoke-signals"}, 2, `unknown -transport "smoke-signals"`},
		{"proc in single-run mode", []string{"-algo", "multiset", "-transport", "proc"}, 2, "-transport proc applies to fleet mode"},
		{"tcp in single-run mode", []string{"-algo", "multiset", "-transport", "tcp"}, 2, "-transport tcp applies to fleet mode"},
		{"tcp without workers", []string{"-algo", "relalg", "-transport", "tcp"}, 2, "-transport tcp requires -workers"},
		{"workers without tcp", []string{"-workers", "127.0.0.1:9051"}, 2, "-workers requires -transport tcp"},
		{"workers with proc", []string{"-algo", "relalg", "-transport", "proc", "-workers", "127.0.0.1:9051"}, 2, "-workers requires -transport tcp"},
		{"bad worker address", []string{"-algo", "relalg", "-transport", "tcp", "-workers", "localhost"}, 2, "bad worker address"},
		{"serve with transport", []string{"-serve", "127.0.0.1:0", "-transport", "proc"}, 2, "-serve conflicts"},
		{"serve with workers", []string{"-serve", "127.0.0.1:0", "-workers", "127.0.0.1:9051"}, 2, "-serve conflicts"},
		{"spill threshold without storage", []string{"-spill-threshold", "64"}, 2, "-spill-threshold requires -storage file or mmap"},
		{"negative spill threshold", []string{"-storage", "file", "-spill-threshold", "-1"}, 2, "negative SpillThreshold"},
		{"zero budget", []string{"-algo", "relalg", "-budget", "0"}, 2, "-budget must be a positive finite bit count"},
		{"negative budget", []string{"-algo", "relalg", "-budget", "-256"}, 2, "-budget must be a positive finite bit count"},
		{"NaN budget", []string{"-algo", "relalg", "-budget", "NaN"}, 2, "-budget must be a positive finite bit count"},
		{"infinite budget", []string{"-algo", "relalg", "-budget", "+Inf"}, 2, "-budget must be a positive finite bit count"},
		{"budget on wrong algo", []string{"-algo", "multiset", "-budget", "256"}, 2, "-budget applies to -algo relalg"},
		{"budget tapes without budget", []string{"-algo", "relalg", "-budget-tapes", "8"}, 2, "require -budget"},
		{"too few budget tapes", []string{"-algo", "relalg", "-budget", "256", "-budget-tapes", "3"}, 2, "cannot hold a sort"},
		{"zero budget shards", []string{"-algo", "relalg", "-budget", "256", "-budget-shards", "0"}, 2, "shard ceiling"},
		{"infeasible set params", []string{"-algo", "set", "-m", "2048", "-n", "8"}, 1, "raise -n or lower -m"},
		{"bad input", []string{"-input", "not-an-instance"}, 1, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errOut strings.Builder
			if code := run(context.Background(), c.args, &out, &errOut); code != c.code {
				t.Fatalf("exit %d, want %d; stderr:\n%s", code, c.code, errOut.String())
			}
			if c.frag != "" && !strings.Contains(errOut.String(), c.frag) {
				t.Fatalf("stderr misses %q:\n%s", c.frag, errOut.String())
			}
		})
	}
}

// errAfter fails every write past a byte budget — the stand-in for a
// consumer that dies mid-stream.
type errAfter struct {
	n int
}

var errSink = errors.New("sink failed")

func (w *errAfter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errSink
	}
	w.n -= len(p)
	return len(p), nil
}

// A mid-stream encoder error aborts the fleet: strun exits 1 with the
// sink's error instead of hanging or emitting further rows.
func TestFleetEncoderErrorAborts(t *testing.T) {
	var errOut strings.Builder
	out := &errAfter{n: 40} // a few rows, then the sink dies
	args := []string{"-algo", "fingerprint", "-m", "8", "-n", "8", "-yes=false",
		"-trials", "64", "-parallel", "4", "-shards", "2", "-seed", "5"}
	if code := run(context.Background(), args, out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1; stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "sink failed") {
		t.Fatalf("encoder error not surfaced:\n%s", errOut.String())
	}
}

// A cancelled run context (the SIGINT/SIGTERM path) drains the fleet,
// flushes the partial prefix and exits 130 with an honest footer.
func TestFleetInterrupted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errOut strings.Builder
	args := []string{"-algo", "fingerprint", "-m", "8", "-n", "8", "-yes=false",
		"-trials", "32", "-seed", "5"}
	if code := run(ctx, args, &out, &errOut); code != 130 {
		t.Fatalf("exit %d, want 130; stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "interrupted — partial results:") {
		t.Fatalf("no partial-results footer on stderr:\n%s", errOut.String())
	}
	if code := run(ctx, []string{"-algo", "relalg", "-m", "16", "-n", "10"}, &out, &errOut); code != 130 {
		t.Fatalf("relalg under cancelled ctx: exit %d, want 130; stderr:\n%s", code, errOut.String())
	}
}
