package main

import (
	"encoding/csv"
	"strconv"
	"strings"
	"testing"
)

// Smoke: one deterministic decider end to end, agreeing with the
// reference.
func TestRunMultiset(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-algo", "multiset", "-m", "8", "-n", "6"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut.String())
	}
	for _, frag := range []string{"instance:", "verdict:  accept", "reference: accept", "resources:"} {
		if !strings.Contains(out.String(), frag) {
			t.Fatalf("output misses %q:\n%s", frag, out.String())
		}
	}
}

func TestRunExplicitInput(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-algo", "multiset", "-input", "01#10#10#01#"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "m=2") {
		t.Fatalf("explicit instance not decoded:\n%s", out.String())
	}
}

// The fingerprint fleet: rows in every format, byte-identical across
// worker counts, with the summary on stderr.
func TestFingerprintFleetFormats(t *testing.T) {
	fleet := func(format, parallel string) (string, string) {
		var out, errOut strings.Builder
		args := []string{"-algo", "fingerprint", "-m", "8", "-n", "8", "-yes=false",
			"-trials", "16", "-parallel", parallel, "-format", format, "-seed", "5"}
		if code := run(args, &out, &errOut); code != 0 {
			t.Fatalf("exit %d, stderr:\n%s", code, errOut.String())
		}
		return out.String(), errOut.String()
	}
	for _, format := range []string{"text", "json", "csv"} {
		seq, _ := fleet(format, "1")
		par, errOut := fleet(format, "8")
		if seq != par {
			t.Fatalf("%s rows differ across -parallel:\n--- 1 ---\n%s\n--- 8 ---\n%s", format, seq, par)
		}
		if !strings.Contains(errOut, "fleet: ") || !strings.Contains(errOut, "CI") {
			t.Fatalf("no summary on stderr:\n%s", errOut)
		}
		wantLines := 16
		if format == "csv" {
			wantLines = 17 // header
		}
		if got := strings.Count(par, "\n"); got != wantLines {
			t.Fatalf("%s: %d lines, want %d:\n%s", format, got, wantLines, par)
		}
	}
	// CSV parses and every trial index appears in order.
	out, _ := fleet("csv", "4")
	recs, err := csv.NewReader(strings.NewReader(out)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range recs[1:] {
		if rec[0] != strconv.Itoa(i) {
			t.Fatalf("row %d has trial %s (rows must stream in trial order)", i, rec[0])
		}
	}
}

// The sharded query mode: the symmetric-difference verdict agrees
// with the reference on yes- and no-instances, and stdout is
// byte-identical at every -shards value (the census on stderr is the
// only place the execution shape may show).
func TestRunRelAlgShardInvariant(t *testing.T) {
	for _, yes := range []string{"true", "false"} {
		runWith := func(shards string) (string, string) {
			var out, errOut strings.Builder
			args := []string{"-algo", "relalg", "-m", "32", "-n", "10", "-seed", "9",
				"-yes=" + yes, "-shards", shards}
			if code := run(args, &out, &errOut); code != 0 {
				t.Fatalf("yes=%s shards=%s: exit %d, stderr:\n%s", yes, shards, code, errOut.String())
			}
			return out.String(), errOut.String()
		}
		ref, refErr := runWith("1")
		want := "verdict:  accept"
		if yes == "false" {
			want = "verdict:  reject"
		}
		for _, frag := range []string{"instance:", "query:", want, "reference:"} {
			if !strings.Contains(ref, frag) {
				t.Fatalf("yes=%s: output misses %q:\n%s", yes, frag, ref)
			}
		}
		if !strings.Contains(refErr, "operator sorts") {
			t.Fatalf("yes=%s: no census on stderr:\n%s", yes, refErr)
		}
		for _, shards := range []string{"2", "4"} {
			if got, _ := runWith(shards); got != ref {
				t.Fatalf("yes=%s: stdout differs at -shards %s:\n--- 1 ---\n%s\n--- %s ---\n%s",
					yes, shards, ref, shards, got)
			}
		}
	}
}

func TestFleetRejectsOtherAlgos(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-algo", "sort", "-trials", "5"}, &out, &errOut); code != 1 {
		t.Fatalf("fleet on sort: exit %d", code)
	}
}

func TestFlagAndAlgoErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-nonsense"}, &out, &errOut); code != 2 {
		t.Fatalf("bad flag: exit %d", code)
	}
	if code := run([]string{"-algo", "bogus"}, &out, &errOut); code != 1 {
		t.Fatalf("unknown algo: exit %d", code)
	}
	if code := run([]string{"-input", "not-an-instance"}, &out, &errOut); code != 1 {
		t.Fatalf("bad input: exit %d", code)
	}
}
