package main

import (
	"os"
	"testing"

	"extmem/internal/transport"
)

// TestMain routes worker-mode re-executions of this test binary into
// the shard worker loop — the same dispatch main() performs, so tests
// can run fleets and queries under -transport proc.
func TestMain(m *testing.M) {
	transport.MaybeWorker()
	os.Exit(m.Run())
}
