// Command lowerbound prints the quantitative content of the paper's
// main theorem for chosen parameters: the Lemma 21 requirements and
// pigeonhole gap, the Lemma 32 skeleton-count bound, and the Ω(log N)
// tightness frontier of Lemma 22.
//
// Usage:
//
//	lowerbound -t 2 -d 1 -lo 11 -hi 24
//	lowerbound -gap -m 16
package main

import (
	"flag"
	"fmt"
	"math/big"

	"extmem/internal/lowerbound"
)

func main() {
	t := flag.Int("t", 2, "number of external tapes")
	d := flag.Int("d", 1, "simulation-lemma constant d")
	lo := flag.Int("lo", 11, "smallest exponent e (m = 2^e)")
	hi := flag.Int("hi", 24, "largest exponent e")
	gap := flag.Bool("gap", false, "print the Lemma 21 pigeonhole gap table instead")
	m := flag.Int("m", 16, "m for the gap table")
	flag.Parse()

	if *gap {
		printGap(*m)
		return
	}
	fmt.Printf("Tightness frontier (Lemma 22, t = %d, d = %d):\n", *t, *d)
	fmt.Printf("for each m, the largest scan count r such that EVERY randomized one-sided-error\n")
	fmt.Printf("machine with ≤ r scans and internal memory ≤ N^(1/4)/log N fails on CHECK-ϕ\n")
	fmt.Printf("(hence on (multi)set equality and checksort):\n\n")
	fmt.Print(lowerbound.FrontierTable(lowerbound.Frontier(*t, *d, *lo, *hi)))
	fmt.Println("\nThe ratio column converging to a constant is the Ω(log N) lower bound;")
	fmt.Println("Corollary 7's merge-sort decider closes the gap from above at O(log N) scans.")
}

func printGap(m int) {
	k := big.NewInt(int64(2*m + 3))
	nMin := 1 + (m*m+1)*new(big.Int).Lsh(k, 1).BitLen()
	fmt.Printf("Lemma 21 parameters for m = %d: k = %v, n threshold = %d\n\n", m, k, nMin)
	fmt.Printf("%10s %28s %8s\n", "n", "gap 2^n/(2m(2k)^{m^2})", ">= 2 ?")
	for _, n := range []int{nMin / 4, nMin / 2, nMin - 1, nMin, nMin * 2} {
		g := lowerbound.PigeonholeGap(m, n, k)
		ok := g.Cmp(big.NewRat(2, 1)) >= 0
		f, _ := g.Float64()
		fmt.Printf("%10d %28g %8v\n", n, f, ok)
	}
	fmt.Println("\nA gap ≥ 2 forces two structured inputs into one (choices, skeleton) class;")
	fmt.Println("Lemma 34 then composes them into an accepted no-instance — the contradiction.")
}
