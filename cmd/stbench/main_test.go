package main

import (
	"context"
	"crypto/sha256"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"extmem/internal/transport"
)

// One tiny end-to-end run per output format, against a fast
// deterministic experiment.
func TestFormats(t *testing.T) {
	cases := []struct {
		format string
		check  func(t *testing.T, out string)
	}{
		{"text", func(t *testing.T, out string) {
			for _, frag := range []string{"== E9", "PASS", "PODS 2006"} {
				if !strings.Contains(out, frag) {
					t.Fatalf("text output misses %q:\n%s", frag, out)
				}
			}
		}},
		{"json", func(t *testing.T, out string) {
			var r struct{ ID, Title, Claim, Table, Notes string }
			if err := json.Unmarshal([]byte(out), &r); err != nil {
				t.Fatalf("json output not one object per line: %v\n%s", err, out)
			}
			if r.ID != "E9" || !strings.HasPrefix(r.Notes, "PASS") || r.Table == "" {
				t.Fatalf("bad json record %+v", r)
			}
		}},
		{"csv", func(t *testing.T, out string) {
			recs, err := csv.NewReader(strings.NewReader(out)).ReadAll()
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 2 || recs[0][0] != "id" || recs[1][0] != "E9" {
				t.Fatalf("bad csv records %v", recs)
			}
		}},
	}
	for _, c := range cases {
		t.Run(c.format, func(t *testing.T) {
			var out, errOut strings.Builder
			if code := run(context.Background(), []string{"-only", "E9", "-format", c.format}, &out, &errOut); code != 0 {
				t.Fatalf("exit %d, stderr:\n%s", code, errOut.String())
			}
			if !strings.Contains(errOut.String(), "running E9") {
				t.Fatalf("no streaming progress on stderr:\n%s", errOut.String())
			}
			c.check(t, out.String())
		})
	}
}

// The acceptance criterion: for a fixed -seed, stdout is
// byte-identical at -parallel=1 and a high worker count, including on
// a Monte-Carlo experiment with a custom fleet size.
func TestOutputParallelInvariant(t *testing.T) {
	runWith := func(parallel string) string {
		var out, errOut strings.Builder
		args := []string{"-only", "E2", "-seed", "7", "-trials", "12", "-parallel", parallel}
		if code := run(context.Background(), args, &out, &errOut); code != 0 {
			t.Fatalf("exit %d, stderr:\n%s", code, errOut.String())
		}
		return out.String()
	}
	if seq, par := runWith("1"), runWith("8"); seq != par {
		t.Fatalf("output differs across -parallel:\n--- 1 ---\n%s\n--- 8 ---\n%s", seq, par)
	}
}

func TestFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		frag string // required stderr fragment; "" skips the check
	}{
		{"bad flag", []string{"-nonsense"}, ""},
		{"bad format", []string{"-format", "xml"}, `unknown format "xml"`},
		{"unknown experiment id", []string{"-only", "E99"}, "no experiment matches"},
		{"negative trials", []string{"-trials", "-1"}, "-trials must be >= 0"},
		{"zero parallel", []string{"-parallel", "0"}, "-parallel must be >= 1"},
		{"zero shards", []string{"-shards", "0"}, "-shards must be >= 1"},
		{"bad chaos mode", []string{"-chaos", "meteor"}, `unknown -chaos mode "meteor"`},
		{"bad chaos rate", []string{"-chaos", "flaky", "-chaos-rate", "1.5"}, "-chaos-rate must be in [0, 1]"},
		{"NaN chaos rate", []string{"-chaos", "flaky", "-chaos-rate", "NaN"}, "-chaos-rate must be in [0, 1]"},
		{"chaos rate without chaos", []string{"-chaos-rate", "0.5"}, "-chaos-rate requires -chaos"},
		{"bad transport", []string{"-transport", "carrier-pigeon"}, `unknown -transport "carrier-pigeon"`},
		{"zero budget", []string{"-budget", "0"}, "-budget must be a positive finite bit count"},
		{"negative budget", []string{"-budget", "-1"}, "-budget must be a positive finite bit count"},
		{"NaN budget", []string{"-budget", "NaN"}, "-budget must be a positive finite bit count"},
		{"infinite budget", []string{"-budget", "+Inf"}, "-budget must be a positive finite bit count"},
		{"budget shards without budget", []string{"-budget-shards", "2"}, "require -budget"},
		{"bad storage", []string{"-storage", "floppy"}, `unknown storage "floppy"`},
		{"spill dir without storage", []string{"-spill-dir", "/tmp"}, "-spill-dir requires -storage file or mmap"},
		{"spill threshold without storage", []string{"-spill-threshold", "64"}, "-spill-threshold requires -storage file or mmap"},
		{"negative spill threshold", []string{"-storage", "file", "-spill-threshold", "-1"}, "negative SpillThreshold"},
		{"tcp without workers", []string{"-transport", "tcp"}, "-transport tcp requires -workers"},
		{"workers without tcp", []string{"-workers", "127.0.0.1:9051"}, "-workers requires -transport tcp"},
		{"workers with proc", []string{"-transport", "proc", "-workers", "127.0.0.1:9051"}, "-workers requires -transport tcp"},
		{"bad worker address", []string{"-transport", "tcp", "-workers", "localhost"}, "bad worker address"},
		{"serve with transport", []string{"-serve", "127.0.0.1:0", "-transport", "proc"}, "-serve conflicts"},
		{"serve with workers", []string{"-serve", "127.0.0.1:0", "-workers", "127.0.0.1:9051"}, "-serve conflicts"},
		{"too few budget tapes", []string{"-budget", "256", "-budget-tapes", "3"}, "cannot hold a sort"},
		{"zero budget shards", []string{"-budget", "256", "-budget-shards", "0"}, "shard ceiling"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errOut strings.Builder
			if code := run(context.Background(), c.args, &out, &errOut); code != 2 {
				t.Fatalf("exit %d, want 2; stderr:\n%s", code, errOut.String())
			}
			if c.frag != "" && !strings.Contains(errOut.String(), c.frag) {
				t.Fatalf("stderr misses %q:\n%s", c.frag, errOut.String())
			}
		})
	}
}

// The PR 4 acceptance criterion: for a fixed -seed, the full text
// report is byte-identical at every -shards × -parallel combination —
// sharding is an execution choice, never an observable one.
func TestOutputShardInvariant(t *testing.T) {
	runWith := func(shards, parallel string) string {
		var out, errOut strings.Builder
		args := []string{"-seed", "5", "-shards", shards, "-parallel", parallel}
		if code := run(context.Background(), args, &out, &errOut); code != 0 {
			t.Fatalf("shards=%s parallel=%s: exit %d, stderr:\n%s", shards, parallel, code, errOut.String())
		}
		return out.String()
	}
	ref := runWith("1", "1")
	for _, shards := range []string{"1", "2", "4"} {
		for _, parallel := range []string{"1", "8"} {
			if shards == "1" && parallel == "1" {
				continue
			}
			if got := runWith(shards, parallel); got != ref {
				t.Fatalf("output differs at -shards %s -parallel %s", shards, parallel)
			}
		}
	}
}

// The PR 9 acceptance criterion: for a fixed -seed the full text
// report hashes identically at every -storage × -shards corner — the
// storage backend may move the bytes' home, never a count, so where
// tape cells live is invisible in every table of every experiment.
func TestOutputStorageInvariant(t *testing.T) {
	runWith := func(storage, shards string) [32]byte {
		var out, errOut strings.Builder
		args := []string{"-seed", "5", "-shards", shards, "-storage", storage}
		if storage != "mem" {
			args = append(args, "-spill-dir", t.TempDir())
		}
		if code := run(context.Background(), args, &out, &errOut); code != 0 {
			t.Fatalf("storage=%s shards=%s: exit %d, stderr:\n%s", storage, shards, code, errOut.String())
		}
		return sha256.Sum256([]byte(out.String()))
	}
	ref := runWith("mem", "1")
	for _, storage := range []string{"mem", "file", "mmap"} {
		for _, shards := range []string{"1", "4"} {
			if storage == "mem" && shards == "1" {
				continue
			}
			if got := runWith(storage, shards); got != ref {
				t.Fatalf("report digest differs at -storage %s -shards %s", storage, shards)
			}
		}
	}
}

// The query-layer half of the acceptance criterion: the relational
// and XML query experiments — including the sharded-query frontier
// E19 — hash to the same sha256 at every -shards × -parallel corner.
// (TestOutputShardInvariant covers the full suite; this test pins the
// query workloads by digest so a sharded-evaluator regression is
// attributed to the right experiment.)
func TestQueryExperimentsShardMatrix(t *testing.T) {
	for _, id := range []string{"E6", "E7", "E8", "E19"} {
		var ref [sha256.Size]byte
		for i, shape := range [][2]string{{"1", "1"}, {"2", "8"}, {"4", "1"}, {"4", "8"}} {
			var out, errOut strings.Builder
			args := []string{"-only", id, "-seed", "5", "-shards", shape[0], "-parallel", shape[1]}
			if code := run(context.Background(), args, &out, &errOut); code != 0 {
				t.Fatalf("%s shards=%s parallel=%s: exit %d, stderr:\n%s",
					id, shape[0], shape[1], code, errOut.String())
			}
			sum := sha256.Sum256([]byte(out.String()))
			if i == 0 {
				ref = sum
			} else if sum != ref {
				t.Errorf("%s: sha256 differs at -shards %s -parallel %s", id, shape[0], shape[1])
			}
		}
	}
}

// The planner envelope is an execution choice like sharding: the
// query experiments hash to the same sha256 with and without -budget,
// at every envelope × -shards × -parallel × -transport corner, and
// the full text report cannot move either.
func TestOutputBudgetInvariant(t *testing.T) {
	runWith := func(extra ...string) string {
		var out, errOut strings.Builder
		args := append([]string{"-seed", "5"}, extra...)
		if code := run(context.Background(), args, &out, &errOut); code != 0 {
			t.Fatalf("%v: exit %d, stderr:\n%s", extra, code, errOut.String())
		}
		return out.String()
	}
	for _, id := range []string{"E6", "E19", "E21"} {
		ref := sha256.Sum256([]byte(runWith("-only", id)))
		for _, extra := range [][]string{
			{"-budget", "256"},
			{"-budget", "16384", "-budget-tapes", "12", "-budget-shards", "8"},
			{"-budget", "256", "-shards", "2", "-parallel", "8"},
			{"-budget", "256", "-shards", "4", "-parallel", "1"},
			{"-budget", "256", "-shards", "2", "-transport", "proc"},
		} {
			args := append([]string{"-only", id}, extra...)
			if got := sha256.Sum256([]byte(runWith(args...))); got != ref {
				t.Errorf("%s: sha256 differs under %v", id, extra)
			}
		}
	}
	if runWith("-budget", "512") != runWith() {
		t.Error("full text report differs under -budget 512")
	}
}

// JSON and CSV carry the shards column as execution provenance; the
// rest of the record stays byte-identical across shard counts.
func TestShardColumnInEncodings(t *testing.T) {
	runWith := func(format, shards string) string {
		var out, errOut strings.Builder
		args := []string{"-only", "E9", "-format", format, "-shards", shards}
		if code := run(context.Background(), args, &out, &errOut); code != 0 {
			t.Fatalf("exit %d, stderr:\n%s", code, errOut.String())
		}
		return out.String()
	}
	var rec struct{ Shards int }
	if err := json.Unmarshal([]byte(runWith("json", "4")), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Shards != 4 {
		t.Fatalf("json shards = %d, want 4", rec.Shards)
	}
	recs, err := csv.NewReader(strings.NewReader(runWith("csv", "3"))).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	col := -1
	for i, name := range recs[0] {
		if name == "shards" {
			col = i
		}
	}
	if col < 0 || recs[1][col] != "3" {
		t.Fatalf("csv shards column missing or wrong: header %v row %v", recs[0], recs[1])
	}
}

// The PR 7 acceptance criterion: the process transport is an
// execution shape like sharding — for a fixed -seed the full text
// report is byte-identical between -transport inproc and -transport
// proc, at every -shards × -parallel corner. Every shard attempt under
// proc crosses a real process boundary (this test binary re-executed
// in worker mode by TestMain's dispatch).
func TestOutputTransportInvariant(t *testing.T) {
	runWith := func(extra ...string) string {
		var out, errOut strings.Builder
		args := append([]string{"-seed", "5"}, extra...)
		if code := run(context.Background(), args, &out, &errOut); code != 0 {
			t.Fatalf("%v: exit %d, stderr:\n%s", extra, code, errOut.String())
		}
		return out.String()
	}
	ref := runWith("-transport", "inproc")
	if got := runWith("-transport", "proc", "-shards", "2", "-parallel", "8"); got != ref {
		t.Fatal("full report differs between -transport inproc and proc")
	}
	// Sweep the remaining matrix corners on the Monte-Carlo E2 fleet,
	// where every trial row crosses the boundary.
	eref := runWith("-only", "E2", "-trials", "12")
	for _, shards := range []string{"1", "2", "4"} {
		for _, parallel := range []string{"1", "8"} {
			got := runWith("-only", "E2", "-trials", "12",
				"-transport", "proc", "-shards", shards, "-parallel", parallel)
			if got != eref {
				t.Errorf("E2 differs at -transport proc -shards %s -parallel %s", shards, parallel)
			}
		}
	}
}

// The multi-host acceptance criterion: with loopback workers standing
// in for remote hosts, the full -seed 5 report is byte-identical
// between -transport inproc and -transport tcp, and the Monte-Carlo
// E2 fleet sweeps the -shards × -parallel matrix with every trial row
// crossing a real TCP connection.
func TestOutputTCPTransportInvariant(t *testing.T) {
	tr, stop, err := transport.LocalWorkers(2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	workers := strings.Join(tr.Workers, ",")
	runWith := func(extra ...string) string {
		var out, errOut strings.Builder
		args := append([]string{"-seed", "5"}, extra...)
		if code := run(context.Background(), args, &out, &errOut); code != 0 {
			t.Fatalf("%v: exit %d, stderr:\n%s", extra, code, errOut.String())
		}
		return out.String()
	}
	ref := runWith("-transport", "inproc")
	if got := runWith("-transport", "tcp", "-workers", workers, "-shards", "2", "-parallel", "8"); got != ref {
		t.Fatal("full report differs between -transport inproc and tcp")
	}
	eref := runWith("-only", "E2", "-trials", "12")
	for _, shards := range []string{"1", "2", "4"} {
		for _, parallel := range []string{"1", "8"} {
			got := runWith("-only", "E2", "-trials", "12",
				"-transport", "tcp", "-workers", workers, "-shards", shards, "-parallel", parallel)
			if got != eref {
				t.Errorf("E2 differs at -transport tcp -shards %s -parallel %s", shards, parallel)
			}
		}
	}
}

// Chaos and the process transport compose: the strikes live in the
// coordinator's injector, so the report still cannot move.
func TestChaosTransportInvariant(t *testing.T) {
	runWith := func(extra ...string) string {
		var out, errOut strings.Builder
		args := append([]string{"-only", "E18", "-seed", "5"}, extra...)
		if code := run(context.Background(), args, &out, &errOut); code != 0 {
			t.Fatalf("%v: exit %d, stderr:\n%s", extra, code, errOut.String())
		}
		return out.String()
	}
	ref := runWith()
	if got := runWith("-chaos", "flaky", "-transport", "proc", "-shards", "2"); got != ref {
		t.Fatal("E18 differs under -chaos flaky -transport proc")
	}
	tr, stop, err := transport.LocalWorkers(2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	if got := runWith("-chaos", "flaky", "-transport", "tcp",
		"-workers", strings.Join(tr.Workers, ","), "-shards", "2"); got != ref {
		t.Fatal("E18 differs under -chaos flaky -transport tcp")
	}
}

// The PR 6 acceptance criterion: recoverable chaos is an execution
// shape like sharding — for a fixed -seed the full text report is
// byte-identical across -shards × -parallel × {fault-free, flaky
// panics, delays}. (The flaky plan pins site 0, so every experiment's
// fleet provably exercises panic recovery, and the report still
// cannot move.)
func TestChaosOutputInvariant(t *testing.T) {
	runWith := func(extra ...string) string {
		var out, errOut strings.Builder
		args := append([]string{"-seed", "5"}, extra...)
		if code := run(context.Background(), args, &out, &errOut); code != 0 {
			t.Fatalf("%v: exit %d, stderr:\n%s", extra, code, errOut.String())
		}
		return out.String()
	}
	ref := runWith()
	for _, chaos := range []string{"flaky", "delay"} {
		for _, shape := range [][2]string{{"1", "1"}, {"2", "8"}, {"4", "1"}, {"4", "8"}} {
			got := runWith("-chaos", chaos, "-shards", shape[0], "-parallel", shape[1])
			if got != ref {
				t.Errorf("output differs under -chaos %s -shards %s -parallel %s",
					chaos, shape[0], shape[1])
			}
		}
	}
}

// The query experiments stay digest-identical under injected flaky
// shard faults: the sharded relational evaluator retries struck
// shards and the report cannot tell.
func TestQueryExperimentsChaosMatrix(t *testing.T) {
	for _, id := range []string{"E6", "E19"} {
		var ref [sha256.Size]byte
		first := true
		for _, chaos := range []string{"", "flaky"} {
			for _, shards := range []string{"1", "4"} {
				var out, errOut strings.Builder
				args := []string{"-only", id, "-seed", "5", "-shards", shards}
				if chaos != "" {
					args = append(args, "-chaos", chaos)
				}
				if code := run(context.Background(), args, &out, &errOut); code != 0 {
					t.Fatalf("%s chaos=%q shards=%s: exit %d, stderr:\n%s",
						id, chaos, shards, code, errOut.String())
				}
				sum := sha256.Sum256([]byte(out.String()))
				if first {
					ref, first = sum, false
				} else if sum != ref {
					t.Errorf("%s: sha256 differs at -chaos %q -shards %s", id, chaos, shards)
				}
			}
		}
	}
}

// A cancelled run context (the SIGINT/SIGTERM path) stops before the
// next experiment, flushes the encoder with a partial-results footer
// and exits 130.
func TestInterruptPartialFooter(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errOut strings.Builder
	if code := run(ctx, []string{"-only", "E9"}, &out, &errOut); code != 130 {
		t.Fatalf("exit %d, want 130; stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "interrupted — partial results: 0/1 experiments completed") {
		t.Fatalf("no partial-results footer on stdout:\n%s", out.String())
	}
	out.Reset()
	if code := run(ctx, []string{"-only", "E9", "-format", "json"}, &out, &errOut); code != 130 {
		t.Fatalf("json: exit %d, want 130", code)
	}
	var foot struct {
		Interrupted bool `json:"interrupted"`
		Completed   int  `json:"completed"`
		Total       int  `json:"total"`
	}
	if err := json.Unmarshal([]byte(out.String()), &foot); err != nil {
		t.Fatalf("json footer: %v\n%s", err, out.String())
	}
	if !foot.Interrupted || foot.Completed != 0 || foot.Total != 1 {
		t.Fatalf("bad json footer %+v", foot)
	}
	out.Reset()
	if code := run(ctx, []string{"-only", "E9", "-format", "csv"}, &out, &errOut); code != 130 {
		t.Fatalf("csv: exit %d, want 130", code)
	}
	recs, err := csv.NewReader(strings.NewReader(out.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	last := recs[len(recs)-1]
	if last[0] != "interrupted" || !strings.Contains(last[3], "partial results: 0/1") {
		t.Fatalf("bad csv footer %v", last)
	}
}
