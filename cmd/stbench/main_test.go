package main

import (
	"crypto/sha256"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

// One tiny end-to-end run per output format, against a fast
// deterministic experiment.
func TestFormats(t *testing.T) {
	cases := []struct {
		format string
		check  func(t *testing.T, out string)
	}{
		{"text", func(t *testing.T, out string) {
			for _, frag := range []string{"== E9", "PASS", "PODS 2006"} {
				if !strings.Contains(out, frag) {
					t.Fatalf("text output misses %q:\n%s", frag, out)
				}
			}
		}},
		{"json", func(t *testing.T, out string) {
			var r struct{ ID, Title, Claim, Table, Notes string }
			if err := json.Unmarshal([]byte(out), &r); err != nil {
				t.Fatalf("json output not one object per line: %v\n%s", err, out)
			}
			if r.ID != "E9" || !strings.HasPrefix(r.Notes, "PASS") || r.Table == "" {
				t.Fatalf("bad json record %+v", r)
			}
		}},
		{"csv", func(t *testing.T, out string) {
			recs, err := csv.NewReader(strings.NewReader(out)).ReadAll()
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 2 || recs[0][0] != "id" || recs[1][0] != "E9" {
				t.Fatalf("bad csv records %v", recs)
			}
		}},
	}
	for _, c := range cases {
		t.Run(c.format, func(t *testing.T) {
			var out, errOut strings.Builder
			if code := run([]string{"-only", "E9", "-format", c.format}, &out, &errOut); code != 0 {
				t.Fatalf("exit %d, stderr:\n%s", code, errOut.String())
			}
			if !strings.Contains(errOut.String(), "running E9") {
				t.Fatalf("no streaming progress on stderr:\n%s", errOut.String())
			}
			c.check(t, out.String())
		})
	}
}

// The acceptance criterion: for a fixed -seed, stdout is
// byte-identical at -parallel=1 and a high worker count, including on
// a Monte-Carlo experiment with a custom fleet size.
func TestOutputParallelInvariant(t *testing.T) {
	runWith := func(parallel string) string {
		var out, errOut strings.Builder
		args := []string{"-only", "E2", "-seed", "7", "-trials", "12", "-parallel", parallel}
		if code := run(args, &out, &errOut); code != 0 {
			t.Fatalf("exit %d, stderr:\n%s", code, errOut.String())
		}
		return out.String()
	}
	if seq, par := runWith("1"), runWith("8"); seq != par {
		t.Fatalf("output differs across -parallel:\n--- 1 ---\n%s\n--- 8 ---\n%s", seq, par)
	}
}

func TestFlagErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-nonsense"}, &out, &errOut); code != 2 {
		t.Fatalf("bad flag: exit %d", code)
	}
	if code := run([]string{"-format", "xml"}, &out, &errOut); code != 2 {
		t.Fatalf("bad format: exit %d", code)
	}
	if code := run([]string{"-only", "E99"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown experiment id: exit %d", code)
	}
}

// The PR 4 acceptance criterion: for a fixed -seed, the full text
// report is byte-identical at every -shards × -parallel combination —
// sharding is an execution choice, never an observable one.
func TestOutputShardInvariant(t *testing.T) {
	runWith := func(shards, parallel string) string {
		var out, errOut strings.Builder
		args := []string{"-seed", "5", "-shards", shards, "-parallel", parallel}
		if code := run(args, &out, &errOut); code != 0 {
			t.Fatalf("shards=%s parallel=%s: exit %d, stderr:\n%s", shards, parallel, code, errOut.String())
		}
		return out.String()
	}
	ref := runWith("1", "1")
	for _, shards := range []string{"1", "2", "4"} {
		for _, parallel := range []string{"1", "8"} {
			if shards == "1" && parallel == "1" {
				continue
			}
			if got := runWith(shards, parallel); got != ref {
				t.Fatalf("output differs at -shards %s -parallel %s", shards, parallel)
			}
		}
	}
}

// The query-layer half of the acceptance criterion: the relational
// and XML query experiments — including the sharded-query frontier
// E19 — hash to the same sha256 at every -shards × -parallel corner.
// (TestOutputShardInvariant covers the full suite; this test pins the
// query workloads by digest so a sharded-evaluator regression is
// attributed to the right experiment.)
func TestQueryExperimentsShardMatrix(t *testing.T) {
	for _, id := range []string{"E6", "E7", "E8", "E19"} {
		var ref [sha256.Size]byte
		for i, shape := range [][2]string{{"1", "1"}, {"2", "8"}, {"4", "1"}, {"4", "8"}} {
			var out, errOut strings.Builder
			args := []string{"-only", id, "-seed", "5", "-shards", shape[0], "-parallel", shape[1]}
			if code := run(args, &out, &errOut); code != 0 {
				t.Fatalf("%s shards=%s parallel=%s: exit %d, stderr:\n%s",
					id, shape[0], shape[1], code, errOut.String())
			}
			sum := sha256.Sum256([]byte(out.String()))
			if i == 0 {
				ref = sum
			} else if sum != ref {
				t.Errorf("%s: sha256 differs at -shards %s -parallel %s", id, shape[0], shape[1])
			}
		}
	}
}

// JSON and CSV carry the shards column as execution provenance; the
// rest of the record stays byte-identical across shard counts.
func TestShardColumnInEncodings(t *testing.T) {
	runWith := func(format, shards string) string {
		var out, errOut strings.Builder
		args := []string{"-only", "E9", "-format", format, "-shards", shards}
		if code := run(args, &out, &errOut); code != 0 {
			t.Fatalf("exit %d, stderr:\n%s", code, errOut.String())
		}
		return out.String()
	}
	var rec struct{ Shards int }
	if err := json.Unmarshal([]byte(runWith("json", "4")), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Shards != 4 {
		t.Fatalf("json shards = %d, want 4", rec.Shards)
	}
	recs, err := csv.NewReader(strings.NewReader(runWith("csv", "3"))).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	col := -1
	for i, name := range recs[0] {
		if name == "shards" {
			col = i
		}
	}
	if col < 0 || recs[1][col] != "3" {
		t.Fatalf("csv shards column missing or wrong: header %v row %v", recs[0], recs[1])
	}
}
