// Command stbench runs the full experiment suite of the reproduction
// (E1–E19: one per theorem/lemma of the paper, plus the E17 sort
// r-vs-(s,t) trade-off sweep and the E18/E19 sharded-execution
// censuses for raw sorts and relational queries) and prints every
// table. Monte-Carlo experiments run their trial fleets on the
// sharded execution layer (-shards shards, each a -parallel worker
// pool) with per-trial seeds derived from -seed, and the query
// experiments (E6, E19) additionally re-evaluate their relational
// plans through the sharded relalg.Evaluator at the configured shard
// count, so stdout is byte-identical for a fixed seed at any
// -parallel and any -shards value.
//
// Usage:
//
//	stbench [-seed N] [-only E7] [-trials N] [-parallel N] [-shards N] [-format text|json|csv]
//
// Formats: text (the human report), json (one JSON object per
// experiment per line), csv (one record per experiment). The json and
// csv encodings carry a shards column recording the execution shape
// (provenance only — the tables never depend on it). Reports stream
// as each experiment completes; progress goes to stderr.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"

	"extmem/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("stbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 1, "root seed for all experiments (per-trial seeds derive from it)")
	only := fs.String("only", "", "run a single experiment by id (e.g. E12)")
	trials := fs.Int("trials", 0, "Monte-Carlo fleet size per experiment side (0 = per-experiment default)")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "trial-fleet worker goroutines per shard (never changes the output)")
	shards := fs.Int("shards", 1, "trial-fleet shards, each with its own worker pool (never changes the output)")
	format := fs.String("format", "text", "output format: text, json or csv")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	cfg := experiments.Config{Seed: *seed, Trials: *trials, Parallel: *parallel, Shards: *shards}

	runners := experiments.Runners()
	if *only != "" {
		found := false
		for _, r := range runners {
			if r.ID == *only {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(stderr, "stbench: no experiment matches -only=%s\n", *only)
			return 2
		}
	}

	var emit func(experiments.Result) error
	var finish func() error
	switch *format {
	case "text":
		fmt.Fprintln(stdout, "Reproduction of: Grohe, Hernich, Schweikardt —")
		fmt.Fprintln(stdout, "\"Randomized Computations on Large Data Sets: Tight Lower Bounds\" (PODS 2006)")
		fmt.Fprintln(stdout)
		emit = func(r experiments.Result) error {
			_, err := fmt.Fprintf(stdout, "%s\n\n", r.String())
			return err
		}
		finish = func() error { return nil }
	case "json":
		enc := json.NewEncoder(stdout)
		emit = func(r experiments.Result) error { return enc.Encode(r) }
		finish = func() error { return nil }
	case "csv":
		w := csv.NewWriter(stdout)
		if err := w.Write([]string{"id", "title", "claim", "notes", "shards", "table"}); err != nil {
			fmt.Fprintln(stderr, "stbench:", err)
			return 1
		}
		emit = func(r experiments.Result) error {
			return w.Write([]string{r.ID, r.Title, r.Claim, r.Notes, strconv.Itoa(r.Shards), r.Table})
		}
		finish = func() error { w.Flush(); return w.Error() }
	default:
		fmt.Fprintf(stderr, "stbench: unknown format %q (want text, json or csv)\n", *format)
		return 2
	}

	failed := 0
	for i, runner := range runners {
		if *only != "" && runner.ID != *only {
			continue
		}
		fmt.Fprintf(stderr, "stbench: running %s (%d/%d)\n", runner.ID, i+1, len(runners))
		r := runner.Run(cfg)
		r.Shards = cfg.ShardCount()
		if !r.Passed() {
			failed++
		}
		if err := emit(r); err != nil {
			fmt.Fprintln(stderr, "stbench:", err)
			return 1
		}
	}
	if err := finish(); err != nil {
		fmt.Fprintln(stderr, "stbench:", err)
		return 1
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "%d experiment(s) failed\n", failed)
		return 1
	}
	return 0
}
