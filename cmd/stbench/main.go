// Command stbench runs the full experiment suite of the reproduction
// (E1–E20: one per theorem/lemma of the paper, plus the E17 sort
// r-vs-(s,t) trade-off sweep, the E18/E19 sharded-execution censuses
// for raw sorts and relational queries, and the E20 chaos determinism
// matrix) and prints every table. Monte-Carlo experiments run their
// trial fleets on the sharded execution layer (-shards shards, each a
// -parallel worker pool) with per-trial seeds derived from -seed, and
// the query experiments (E6, E19) additionally re-evaluate their
// relational plans through the sharded relalg.Evaluator at the
// configured shard count, so stdout is byte-identical for a fixed
// seed at any -parallel and any -shards value — and, because
// recoverable faults are just another execution shape, under any
// recoverable -chaos plan.
//
// Usage:
//
//	stbench [-seed N] [-only E7] [-trials N] [-parallel N] [-shards N]
//	        [-transport inproc|proc|tcp] [-workers host:port,...]
//	        [-chaos flaky|delay] [-chaos-rate F]
//	        [-budget BITS] [-budget-tapes N] [-budget-shards N]
//	        [-storage mem|file|mmap] [-spill-dir DIR] [-spill-threshold N]
//	        [-format text|json|csv]
//	stbench -serve host:port
//
// -storage selects where tape cells live (internal/tape backends):
// mem is the in-RAM default, file buffers cells in unlinked temp
// files, mmap memory-maps them. Like -shards it is pure execution
// shape — the backend may move the bytes' home, never a count — so
// stdout is byte-identical at any -storage. -spill-dir places the
// temp files (default: the system temp directory); they are unlinked
// at creation, so no spill file survives any exit, SIGINT included.
// -spill-threshold keeps a file/mmap tape in RAM until it first
// exceeds that many cells — small scratch tapes never touch the disk;
// both flags require -storage file or mmap (exit 2 otherwise).
//
// -budget hands the experiments a cost-based planner envelope
// (internal/plan): BITS of run-formation memory, -budget-tapes tapes
// and up to -budget-shards shard machines per operator stage. The
// planner picks each stage's execution shape inside that envelope —
// another execution choice, so stdout stays byte-identical with or
// without it; E21 verifies the configured envelope's evaluation
// reproduces the single-machine bytes.
//
// -transport proc runs shard attempts in worker processes: stbench
// re-executes itself under the hidden stworker subcommand, ships each
// trial-range or sort assignment over the worker's stdin as
// length-prefixed gob frames, and streams the rows back over stdout
// (internal/transport). Trial rows and sorted ranges are pure
// functions of (seed, index), so stdout is byte-identical to
// -transport inproc; a dead worker takes the same retry → fallback
// path as an injected panic. Fleets whose trial bodies have no wire
// form (and chaos-wrapped fleets, whose strikes live in the
// coordinator's injector) keep running in-process.
//
// -transport tcp ships the same frames over TCP to long-lived workers
// instead of spawned processes: -workers names them (host:port,...,
// required), shard attempts are assigned round-robin by shard index,
// and a retry moves to the next worker in the ring. Each connection
// opens with a handshake carrying the frame-protocol version and the
// workload-registry fingerprint, so a mismatched build is a typed
// error before any job ships. Network death is process death — a
// refused dial, a dropped connection or a stall past the attempt
// deadline takes the same retry → fallback path, so stdout stays
// byte-identical. Start a worker with `stbench -serve host:port`
// (Ctrl-C stops it); the equivalent hidden form is
// `stbench stworker -listen host:port`.
//
// Formats: text (the human report), json (one JSON object per
// experiment per line), csv (one record per experiment). The json and
// csv encodings carry a shards column recording the execution shape
// (provenance only — the tables never depend on it). Reports stream
// as each experiment completes; progress goes to stderr. SIGINT or
// SIGTERM cancels the run context: in-flight fleets drain, the
// encoder is flushed with a partial-results footer, and stbench exits
// 130. Workers live in their own process group, so a terminal
// interrupt reaches only the coordinator — which then tears the
// workers down through their job contexts.
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"syscall"
	"time"

	"extmem/internal/experiments"
	"extmem/internal/faults"
	"extmem/internal/plan"
	"extmem/internal/shard"
	"extmem/internal/tape"
	"extmem/internal/transport"
)

// budgetEnvelope validates the -budget flag family and builds the
// planner envelope, or nil when -budget is absent. The memory bound
// arrives as a float so NaN can be rejected by name: the negated form
// catches it (NaN fails every ordered comparison and would sail
// through `bits <= 0`), alongside zero, negatives and infinities.
func budgetEnvelope(set bool, bits float64, tapes, shards int) (*plan.Budget, error) {
	if !set {
		return nil, nil
	}
	if !(bits > 0) || math.IsInf(bits, 0) {
		return nil, fmt.Errorf("-budget must be a positive finite bit count (got %g)", bits)
	}
	b := plan.Budget{MemoryBits: int64(bits), Tapes: tapes, MaxShards: shards}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return &b, nil
}

func main() {
	if transport.IsWorker(os.Args) {
		// A shard worker: no flags, no signal handling. Pipe workers run
		// in their own process group, so terminal signals reach only the
		// coordinator — which owns the partial-results footer and tears
		// workers down through their job contexts; TCP workers
		// (`stbench stworker -listen addr`) install their own handler.
		os.Exit(transport.WorkerMain(os.Args, os.Stdin, os.Stdout, os.Stderr))
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// chaosPlan builds the fault plan and retry policy of a -chaos mode.
// Both recoverable modes pin trial/shard site 0 so every fleet and
// every sharded sort provably exercises recovery, plus a seed-keyed
// rate so larger fleets see faults spread across their range:
//
//   - flaky: each struck site panics on its first attempt and heals
//     (faults.Plan.Flaky), so the retry layer re-executes the range
//     and the output bytes cannot move;
//   - delay: struck sites stall briefly — the straggler plan; nothing
//     fails, nothing retries, bytes cannot move either.
func chaosPlan(mode string, seed int64, rate float64) (faults.Plan, shard.RetryPolicy, error) {
	switch mode {
	case "":
		return faults.Plan{}, shard.RetryPolicy{}, nil
	case "flaky":
		return faults.Plan{Seed: seed, Mode: faults.Panic, Rate: rate, Sites: []int{0}, Flaky: 1},
			shard.RetryPolicy{MaxAttempts: 64, BaseDelay: 100 * time.Microsecond, MaxDelay: time.Millisecond},
			nil
	case "delay":
		return faults.Plan{Seed: seed, Mode: faults.Delay, Rate: rate, Sites: []int{0}, Delay: 200 * time.Microsecond},
			shard.RetryPolicy{}, nil
	}
	return faults.Plan{}, shard.RetryPolicy{}, fmt.Errorf("unknown -chaos mode %q (want flaky or delay)", mode)
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("stbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 1, "root seed for all experiments (per-trial seeds derive from it)")
	only := fs.String("only", "", "run a single experiment by id (e.g. E12)")
	trials := fs.Int("trials", 0, "Monte-Carlo fleet size per experiment side (0 = per-experiment default)")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "trial-fleet worker goroutines per shard (never changes the output)")
	shards := fs.Int("shards", 1, "trial-fleet shards, each with its own worker pool (never changes the output)")
	format := fs.String("format", "text", "output format: text, json or csv")
	transportMode := fs.String("transport", "inproc", "shard transport: inproc (shard goroutines) or proc (worker processes); never changes the output")
	chaos := fs.String("chaos", "", "inject a recoverable fault plan: flaky (first-attempt panics) or delay (stragglers); never changes the output")
	chaosRate := fs.Float64("chaos-rate", 0.02, "fraction of fault sites struck by the -chaos plan (site 0 always strikes)")
	budget := fs.Float64("budget", 0, "cost-based planner envelope: run-formation memory in bits (never changes the output)")
	budgetTapes := fs.Int("budget-tapes", 6, "planner envelope: tapes per shard machine (requires -budget)")
	budgetShards := fs.Int("budget-shards", 4, "planner envelope: shard-fleet ceiling (requires -budget)")
	storage := fs.String("storage", "mem", "tape storage backend: mem, file or mmap (never changes the output)")
	spillDir := fs.String("spill-dir", "", "directory for file/mmap tape spill files (requires -storage file or mmap; default: system temp dir)")
	spillThreshold := fs.Int("spill-threshold", 0, "cells a file/mmap tape holds in RAM before spilling to its backend (requires -storage file or mmap; 0 = spill from the start)")
	workers := fs.String("workers", "", "comma-separated TCP worker addresses host:port,... (requires -transport tcp)")
	serve := fs.String("serve", "", "serve shard jobs over TCP on this host:port instead of running experiments (conflicts with -transport and -workers)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["serve"] {
		// A worker host runs nothing but the serve loop: the experiment
		// flags describe a run it will never make, and the transport
		// flags describe the coordinator's side of the wire.
		if set["transport"] || set["workers"] {
			fmt.Fprintln(stderr, "stbench: -serve conflicts with -transport and -workers")
			return 2
		}
		if err := transport.ListenAndServe(ctx, *serve, stderr); err != nil {
			fmt.Fprintln(stderr, "stbench:", err)
			return 1
		}
		return 0
	}
	if *trials < 0 {
		fmt.Fprintf(stderr, "stbench: -trials must be >= 0 (got %d)\n", *trials)
		return 2
	}
	if *parallel < 1 {
		fmt.Fprintf(stderr, "stbench: -parallel must be >= 1 (got %d)\n", *parallel)
		return 2
	}
	if *shards < 1 {
		fmt.Fprintf(stderr, "stbench: -shards must be >= 1 (got %d)\n", *shards)
		return 2
	}
	switch *transportMode {
	case "inproc", "proc", "tcp":
	default:
		fmt.Fprintf(stderr, "stbench: unknown -transport %q (want inproc, proc or tcp)\n", *transportMode)
		return 2
	}
	if *transportMode == "tcp" && !set["workers"] {
		fmt.Fprintln(stderr, "stbench: -transport tcp requires -workers")
		return 2
	}
	if set["workers"] && *transportMode != "tcp" {
		fmt.Fprintln(stderr, "stbench: -workers requires -transport tcp")
		return 2
	}
	var workerAddrs []string
	if *transportMode == "tcp" {
		var err error
		if workerAddrs, err = transport.ParseWorkers(*workers); err != nil {
			fmt.Fprintln(stderr, "stbench:", err)
			return 2
		}
	}
	// The negated form catches NaN too, which fails every ordered
	// comparison and would sail through `rate < 0 || rate > 1`.
	if !(*chaosRate >= 0 && *chaosRate <= 1) {
		fmt.Fprintf(stderr, "stbench: -chaos-rate must be in [0, 1] (got %g)\n", *chaosRate)
		return 2
	}
	if !set["chaos"] && set["chaos-rate"] {
		fmt.Fprintln(stderr, "stbench: -chaos-rate requires -chaos")
		return 2
	}
	if !set["budget"] && (set["budget-tapes"] || set["budget-shards"]) {
		fmt.Fprintln(stderr, "stbench: -budget-tapes and -budget-shards require -budget")
		return 2
	}
	storageKind, err := tape.ParseStorage(*storage)
	if err != nil {
		fmt.Fprintln(stderr, "stbench:", err)
		return 2
	}
	if set["spill-dir"] && storageKind == tape.Mem {
		fmt.Fprintln(stderr, "stbench: -spill-dir requires -storage file or mmap")
		return 2
	}
	if set["spill-threshold"] && storageKind == tape.Mem {
		fmt.Fprintln(stderr, "stbench: -spill-threshold requires -storage file or mmap")
		return 2
	}
	topts := tape.Options{Storage: storageKind, SpillDir: *spillDir, SpillThreshold: *spillThreshold}
	if err := topts.Validate(); err != nil {
		fmt.Fprintln(stderr, "stbench:", err)
		return 2
	}
	envelope, err := budgetEnvelope(set["budget"], *budget, *budgetTapes, *budgetShards)
	if err != nil {
		fmt.Fprintln(stderr, "stbench:", err)
		return 2
	}
	faultPlan, retry, err := chaosPlan(*chaos, *seed, *chaosRate)
	if err != nil {
		fmt.Fprintln(stderr, "stbench:", err)
		return 2
	}
	cfg := experiments.Config{
		Seed: *seed, Trials: *trials, Parallel: *parallel, Shards: *shards,
		Ctx: ctx, Faults: faultPlan, Retry: retry, Budget: envelope,
		Storage: topts,
	}
	switch *transportMode {
	case "proc":
		cfg.Proc = &transport.Proc{Stderr: stderr}
	case "tcp":
		cfg.TCP = &transport.TCP{Workers: workerAddrs, DialTimeout: 5 * time.Second}
	}

	runners := experiments.Runners()
	if *only != "" {
		found := false
		for _, r := range runners {
			if r.ID == *only {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(stderr, "stbench: no experiment matches -only=%s\n", *only)
			return 2
		}
	}

	var emit func(experiments.Result) error
	var footer func(done, total int) error
	var finish func() error
	switch *format {
	case "text":
		fmt.Fprintln(stdout, "Reproduction of: Grohe, Hernich, Schweikardt —")
		fmt.Fprintln(stdout, "\"Randomized Computations on Large Data Sets: Tight Lower Bounds\" (PODS 2006)")
		fmt.Fprintln(stdout)
		emit = func(r experiments.Result) error {
			_, err := fmt.Fprintf(stdout, "%s\n\n", r.String())
			return err
		}
		footer = func(done, total int) error {
			_, err := fmt.Fprintf(stdout, "interrupted — partial results: %d/%d experiments completed\n", done, total)
			return err
		}
		finish = func() error { return nil }
	case "json":
		enc := json.NewEncoder(stdout)
		emit = func(r experiments.Result) error { return enc.Encode(r) }
		footer = func(done, total int) error {
			return enc.Encode(struct {
				Interrupted bool `json:"interrupted"`
				Completed   int  `json:"completed"`
				Total       int  `json:"total"`
			}{true, done, total})
		}
		finish = func() error { return nil }
	case "csv":
		w := csv.NewWriter(stdout)
		if err := w.Write([]string{"id", "title", "claim", "notes", "shards", "table"}); err != nil {
			fmt.Fprintln(stderr, "stbench:", err)
			return 1
		}
		emit = func(r experiments.Result) error {
			return w.Write([]string{r.ID, r.Title, r.Claim, r.Notes, strconv.Itoa(r.Shards), r.Table})
		}
		footer = func(done, total int) error {
			return w.Write([]string{"interrupted", "", "",
				fmt.Sprintf("partial results: %d/%d experiments completed", done, total), "", ""})
		}
		finish = func() error { w.Flush(); return w.Error() }
	default:
		fmt.Fprintf(stderr, "stbench: unknown format %q (want text, json or csv)\n", *format)
		return 2
	}

	total := 0
	for _, r := range runners {
		if *only == "" || r.ID == *only {
			total++
		}
	}
	failed, done := 0, 0
	interrupted := false
	for i, runner := range runners {
		if *only != "" && runner.ID != *only {
			continue
		}
		if ctx.Err() != nil {
			interrupted = true
			break
		}
		fmt.Fprintf(stderr, "stbench: running %s (%d/%d)\n", runner.ID, i+1, len(runners))
		r := runner.Run(cfg)
		if ctx.Err() != nil {
			// The cancellation unwound the experiment mid-flight; its
			// result is an artifact of the interrupt, not a finding.
			interrupted = true
			break
		}
		r.Shards = cfg.ShardCount()
		done++
		if !r.Passed() {
			failed++
		}
		if err := emit(r); err != nil {
			fmt.Fprintln(stderr, "stbench:", err)
			return 1
		}
	}
	if interrupted {
		if err := footer(done, total); err != nil {
			fmt.Fprintln(stderr, "stbench:", err)
			return 1
		}
	}
	if err := finish(); err != nil {
		fmt.Fprintln(stderr, "stbench:", err)
		return 1
	}
	if interrupted {
		fmt.Fprintf(stderr, "stbench: interrupted — partial results: %d/%d experiments completed\n", done, total)
		return 130
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "%d experiment(s) failed\n", failed)
		return 1
	}
	return 0
}
