// Command stbench runs the full experiment suite of the reproduction
// (E1–E16, one per theorem/lemma of the paper) and prints every table.
//
// Usage:
//
//	stbench [-seed N] [-only E7]
package main

import (
	"flag"
	"fmt"
	"os"

	"extmem/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed for all experiments")
	only := flag.String("only", "", "run a single experiment by id (e.g. E12)")
	flag.Parse()

	fmt.Println("Reproduction of: Grohe, Hernich, Schweikardt —")
	fmt.Println("\"Randomized Computations on Large Data Sets: Tight Lower Bounds\" (PODS 2006)")
	fmt.Println()

	failed := 0
	for _, r := range experiments.All(*seed) {
		if *only != "" && r.ID != *only {
			continue
		}
		fmt.Println(r.String())
		fmt.Println()
		if len(r.Notes) < 4 || r.Notes[:4] != "PASS" {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}
