module extmem

go 1.24
