package extmem

// Documentation health checks, run by the CI docs job (and by every
// plain `go test ./...`): markdown files must not carry dangling
// relative links, and the README's experiment index must cover the
// full suite. Docs that are tested cannot silently rot.

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"extmem/internal/experiments"
)

// markdownFiles returns every tracked .md file in the repo (skipping
// hidden directories).
func markdownFiles(t *testing.T) []string {
	t.Helper()
	var files []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if strings.HasPrefix(name, ".") && path != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".md") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no markdown files found")
	}
	return files
}

var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// Every relative markdown link must point at an existing file or
// directory.
func TestMarkdownLinksResolve(t *testing.T) {
	for _, file := range markdownFiles(t) {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			// Skip absolute URLs, intra-page anchors and the external
			// article identifiers used by SNIPPETS.md/PAPERS.md.
			if strings.Contains(target, "://") || strings.HasPrefix(target, "#") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "@") {
				continue
			}
			target = strings.SplitN(target, "#", 2)[0]
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: dangling link %q (resolved %s)", file, m[1], resolved)
			}
		}
	}
}

// The README experiment index must name every experiment the suite
// actually runs — the index is generated-by-hand but verified here.
func TestReadmeListsEveryExperiment(t *testing.T) {
	data, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	readme := string(data)
	for _, r := range experiments.Runners() {
		if !strings.Contains(readme, "| "+r.ID+" |") {
			t.Errorf("README.md experiment index misses %s", r.ID)
		}
	}
	// And nothing phantom: an index row implies a runner.
	ids := map[string]bool{}
	for _, r := range experiments.Runners() {
		ids[r.ID] = true
	}
	for _, m := range regexp.MustCompile(`(?m)^\| (E\d+) \|`).FindAllStringSubmatch(readme, -1) {
		if !ids[m[1]] {
			t.Errorf("README.md lists %s but the suite has no such runner", m[1])
		}
	}
}

// The docs the root doc.go points readers at must exist.
func TestRootDocReferences(t *testing.T) {
	data, err := os.ReadFile("doc.go")
	if err != nil {
		t.Fatal(err)
	}
	for _, ref := range regexp.MustCompile(`[A-Z]+\.md`).FindAllString(string(data), -1) {
		if _, err := os.Stat(ref); err != nil {
			t.Errorf("doc.go references %s which does not exist", ref)
		}
	}
}

// Every internal package with exported behavior documented in
// ARCHITECTURE.md's package map must actually exist on disk.
func TestArchitecturePackageMap(t *testing.T) {
	data, err := os.ReadFile("ARCHITECTURE.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range regexp.MustCompile("`(internal/[a-z]+)`").FindAllStringSubmatch(string(data), -1) {
		if st, err := os.Stat(m[1]); err != nil || !st.IsDir() {
			t.Errorf("ARCHITECTURE.md names %s which is not a package directory", m[1])
		}
	}
}

// Guard against the docs drifting from the suite size: the index table
// in the experiments doc.go must mention the last experiment.
func TestExperimentsDocCurrent(t *testing.T) {
	data, err := os.ReadFile("internal/experiments/doc.go")
	if err != nil {
		t.Fatal(err)
	}
	last := experiments.Runners()[len(experiments.Runners())-1].ID
	if !strings.Contains(string(data), fmt.Sprintf("%s ", last)) {
		t.Errorf("internal/experiments/doc.go does not mention %s", last)
	}
}
