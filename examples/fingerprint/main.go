// Fingerprint: the Theorem 8(a) streaming multiset-equality check on
// a large stream, demonstrating the one-sided error profile — equal
// multisets always accepted, unequal ones rejected with high
// probability, all in exactly two sequential scans.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"extmem/internal/algorithms"
	"extmem/internal/core"
	"extmem/internal/problems"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	const m, n = 4096, 24

	yes := problems.GenMultisetYes(m, n, rng)
	no := problems.GenMultisetNo(m, n, rng) // one flipped bit somewhere

	fmt.Printf("stream: 2×%d values of %d bits (N = %d)\n\n", m, n, yes.Size())

	run := func(label string, in problems.Instance, trials int) {
		accepts := 0
		var res core.Resources
		for i := 0; i < trials; i++ {
			mc := core.NewMachine(1, int64(1000+i))
			mc.SetInput(in.Encode())
			v, _, err := algorithms.FingerprintMultisetEquality(mc)
			if err != nil {
				log.Fatal(err)
			}
			if v == core.Accept {
				accepts++
			}
			res = mc.Resources()
		}
		fmt.Printf("%-14s accepted %3d/%3d  (%v)\n", label, accepts, trials, res)
	}

	run("equal:", yes, 50)
	run("one bit off:", no, 50)

	fmt.Println("\nBoosting (reject if ANY of 5 independent runs rejects):")
	mc := core.NewMachine(1, 99)
	mc.SetInput(no.Encode())
	v, err := algorithms.FingerprintRepeated(mc, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("boosted verdict on the unequal stream: %v (%v)\n", v, mc.Resources())
}
