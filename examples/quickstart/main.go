// Quickstart: build an ST machine, run the deterministic
// MULTISET-EQUALITY decider of Corollary 7 on a generated instance,
// and read the exact resource report — the two quantities the paper's
// complexity classes bound.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"extmem/internal/algorithms"
	"extmem/internal/core"
	"extmem/internal/problems"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// A yes-instance: the second half is a shuffle of the first.
	in := problems.GenMultisetYes(1024, 16, rng)
	fmt.Printf("instance: m = %d values of %d bits, N = %d symbols\n",
		in.M(), len(in.V[0]), in.Size())

	// An ST machine: 5 external tapes (input + 2 halves + 2 merge-sort
	// work tapes), an internal-memory meter, deterministic randomness.
	m := core.NewMachine(algorithms.NumDeciderTapes, 42)
	m.SetInput(in.Encode())

	verdict, err := algorithms.MultisetEqualityST(m)
	if err != nil {
		log.Fatal(err)
	}
	res := m.Resources()

	fmt.Printf("verdict:  %v (reference: %v)\n", verdict, problems.MultisetEquality(in))
	fmt.Printf("resources: %v\n", res)
	fmt.Printf("scans / log2(N) = %.2f  — the O(log N) of Corollary 7\n",
		float64(res.Scans())/math.Log2(float64(in.Size())))

	// The same instance under the Theorem 8(a) fingerprint: 2 scans.
	fp := core.NewMachine(1, 42)
	fp.SetInput(in.Encode())
	v2, params, err := algorithms.FingerprintMultisetEquality(fp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfingerprint verdict: %v with p1=%d, p2=%d, x=%d\n", v2, params.P1, params.P2, params.X)
	fmt.Printf("fingerprint resources: %v  — the co-RST(2, O(log N), 1) of Theorem 8(a)\n",
		fp.Resources())
}
