// XML filter: the Theorem 12/13 reductions. Two sets of strings are
// encoded as the Section 4 XML document; the Figure 1 XPath query
// selects the elements of X − Y; the two-run booster machine T̃ turns
// the filter into a SET-EQUALITY decider; and the Theorem 12 XQuery
// query answers equality directly.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"extmem/internal/problems"
	"extmem/internal/xmlstream"
	"extmem/internal/xpath"
	"extmem/internal/xquery"
)

func main() {
	rng := rand.New(rand.NewSource(5))
	in := problems.Instance{
		V: []string{"0001", "0110", "1011"},
		W: []string{"0110", "1111", "0001"},
	}
	doc, err := xmlstream.Parse(xmlstream.EncodeInstance(in))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("document: %s…\n\n", xmlstream.Render(doc)[:60])

	q := xpath.Figure1Query()
	fmt.Printf("XPath (Figure 1): %s\n", q)
	for _, node := range q.Select(doc) {
		fmt.Printf("  selected: X − Y ∋ %q\n", node.StringValue())
	}
	fmt.Printf("filter matches: %v\n\n", xpath.Filter(doc, q))

	fmt.Println("booster T̃ (runs the filter on (X,Y) and (Y,X), boosted):")
	fmt.Printf("  X = Y?  %v  (reference: %v)\n\n",
		xpath.SetEqualityViaFilter(xpath.ExactFilter, in, rng),
		problems.SetEquality(in))

	xq := xquery.TheoremQuery()
	fmt.Printf("XQuery (Theorem 12):\n  %s\n", xq)
	result, err := xq.Eval(doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  result document: %s\n", xmlstream.Render(result))

	// And on an equal pair:
	eq := problems.Instance{V: in.V, W: append([]string(nil), in.V...)}
	doc2, err := xmlstream.Parse(xmlstream.EncodeInstance(eq))
	if err != nil {
		log.Fatal(err)
	}
	result2, err := xq.Eval(doc2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  on equal sets:   %s\n", xmlstream.Render(result2))
}
