// Lower bound: the quantitative content of Theorem 6. Prints the
// Ω(log N) tightness frontier (below which NO randomized
// one-sided-error machine can solve (multi)set equality or
// checksort), and demonstrates the mechanism by defeating a concrete
// bounded-memory streaming sketch with the pigeonhole adversary.
package main

import (
	"fmt"
	"math/rand"

	"extmem/internal/lowerbound"
	"extmem/internal/problems"
)

func main() {
	fmt.Println("Tightness frontier (t = 2 external tapes, memory N^(1/4)/log N):")
	fmt.Print(lowerbound.FrontierTable(lowerbound.Frontier(2, 1, 12, 22)))
	fmt.Println("r/log2(N) settling to a constant IS the Ω(log N) of Theorem 6;")
	fmt.Println("the merge-sort decider needs only O(log N) scans, so the bound is tight.")

	fmt.Println("\n--- the mechanism, live ---")
	rng := rand.New(rand.NewSource(11))
	sketch := lowerbound.NewCommutativeHashStream(12, 4) // 4096 states
	halves := lowerbound.RandomHalves(5000, 4, 8, rng)
	col, found := lowerbound.FindCollision(sketch, halves)
	if !found {
		fmt.Println("no collision found (try more probes)")
		return
	}
	fmt.Printf("probed %d first halves against a 12-bit sketch: halves #%d and #%d collide\n",
		len(halves), col.I, col.J)
	yes := col.YesInstance()
	no := col.FoolingInstance()
	fmt.Printf("  yes-instance:    V=%v W=%v  (multiset-equal: %v)\n",
		yes.V, yes.W, problems.MultisetEquality(yes))
	fmt.Printf("  fooling instance: V=%v W=%v  (multiset-equal: %v)\n",
		no.V, no.W, problems.MultisetEquality(no))
	fooled, err := col.Verify(sketch)
	if err != nil {
		fmt.Println("verify:", err)
		return
	}
	fmt.Printf("the sketch gives the SAME verdict on both: %v — it must err on one of them.\n", fooled)
	fmt.Println("\nTheorem 6 generalizes exactly this: any machine with o(log N) scans and")
	fmt.Println("O(N^(1/4)/log N) memory retains too little information to tell such inputs apart.")
}
