// Relational algebra: the Theorem 11 story in both directions. The
// symmetric-difference query Q' = (R1 − R2) ∪ (R2 − R1) is compiled
// to scan/sort passes (O(log N) reversals, upper bound), and its
// emptiness decides SET-EQUALITY (so the Theorem 6 lower bound makes
// Q' require Ω(log N) random accesses on streams).
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"extmem/internal/core"
	"extmem/internal/problems"
	"extmem/internal/relalg"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	q := relalg.SymmetricDifference("R1", "R2")
	fmt.Printf("query: %s\n\n", q)

	for _, equal := range []bool{true, false} {
		var in problems.Instance
		if equal {
			in = problems.GenSetYes(512, 16, rng)
		} else {
			in = problems.GenSetNo(512, 16, rng)
		}
		db := relalg.InstanceDB(in)

		m := core.NewMachine(relalg.NumQueryTapes, 1)
		result, err := relalg.EvalST(q, db, m)
		if err != nil {
			log.Fatal(err)
		}
		res := m.Resources()
		n := db.Size()
		fmt.Printf("R1 %s R2 (N = %d):\n", map[bool]string{true: "=", false: "≠"}[equal], n)
		fmt.Printf("  |Q'| = %d tuples, so sets %s equal\n",
			len(result.Tuples), map[bool]string{true: "ARE", false: "are NOT"}[len(result.Tuples) == 0])
		fmt.Printf("  resources: %v  (scans/log2N = %.1f)\n\n",
			res, float64(res.Scans())/math.Log2(float64(n)))
	}

	// A richer query: names of items present in R1 with a selected tag.
	db := relalg.DB{
		"Items": {Schema: relalg.Schema{"id", "tag"}, Tuples: []relalg.Tuple{
			{"1", "red"}, {"2", "blue"}, {"3", "red"}, {"4", "green"},
		}},
	}
	rich := relalg.Project{
		Cols: []string{"id"},
		In:   relalg.Select{Pred: relalg.ConstEq{Col: "tag", Const: "red"}, In: relalg.Scan{Rel: "Items"}},
	}
	m := core.NewMachine(relalg.NumQueryTapes, 1)
	out, err := relalg.EvalST(rich, db, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %s → %d tuples: %v\n", rich, len(out.Tuples), out.Sorted())
}
