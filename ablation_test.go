package extmem

// Ablation benchmarks for the load-bearing design choices:
// the fingerprint's repetition/error trade-off, the merge sort's
// logarithmic pass structure, and the NST certificate's tape blowup.

import (
	"math/rand"
	"testing"

	"extmem/internal/algorithms"
	"extmem/internal/core"
	"extmem/internal/problems"
)

// BenchmarkAblationFingerprintRepetitions compares 1 vs 5 repetitions
// of the Theorem 8(a) decider: linear cost for exponentially smaller
// false-accept probability (boosting is the cheap knob of co-RST).
func BenchmarkAblationFingerprintRepetitions(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	in := problems.GenMultisetYes(256, 16, rng)
	enc := in.Encode()
	for _, reps := range []int{1, 3, 5} {
		b.Run(map[int]string{1: "reps=1", 3: "reps=3", 5: "reps=5"}[reps], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := core.NewMachine(1, int64(i))
				m.SetInput(enc)
				if v, err := algorithms.FingerprintRepeated(m, reps); err != nil || v != core.Accept {
					b.Fatal(err, v)
				}
			}
		})
	}
}

// BenchmarkAblationSortScaling exposes the Θ(m log m) work /
// Θ(log m) reversals of the tape merge sort across sizes.
func BenchmarkAblationSortScaling(b *testing.B) {
	for _, mSize := range []int{64, 256, 1024} {
		rng := rand.New(rand.NewSource(int64(mSize)))
		in := problems.GenMultisetYes(mSize, 16, rng)
		enc := in.Encode()
		b.Run(map[int]string{64: "m=64", 256: "m=256", 1024: "m=1024"}[mSize], func(b *testing.B) {
			var scans int
			for i := 0; i < b.N; i++ {
				m := core.NewMachine(4, 1)
				m.SetInput(enc)
				res, err := algorithms.SortLasVegas(m, 1, 2, 3, 1<<30)
				if err != nil || res.Verdict != core.Accept {
					b.Fatal(err)
				}
				scans = res.Resources.Scans()
			}
			b.ReportMetric(float64(scans), "scans")
		})
	}
}

// BenchmarkAblationNSTCertificateBlowup shows the price of the
// Theorem 8(b) construction: certificate length grows ~ N·m·|u|, the
// model's "tape length is free" trade for constant scans.
func BenchmarkAblationNSTCertificateBlowup(b *testing.B) {
	for _, mSize := range []int{2, 4, 8} {
		rng := rand.New(rand.NewSource(int64(mSize)))
		in := problems.GenMultisetYes(mSize, 4, rng)
		b.Run(map[int]string{2: "m=2", 4: "m=4", 8: "m=8"}[mSize], func(b *testing.B) {
			var cells int
			for i := 0; i < b.N; i++ {
				m := core.NewMachine(2, 1)
				m.SetInput(in.Encode())
				if v, err := algorithms.DecideNST(algorithms.NSTMultisetEquality, m, in); err != nil || v != core.Accept {
					b.Fatal(err, v)
				}
				cells = m.Tape(0).Len()
			}
			b.ReportMetric(float64(cells), "tape-cells")
		})
	}
}

// BenchmarkAblationDeciderVsProblem compares the three Corollary 7
// deciders on identical inputs: checksort ≈ one sort, (multi)set
// equality ≈ two.
func BenchmarkAblationDeciderVsProblem(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	in := problems.GenCheckSortYes(256, 12, rng)
	enc := in.Encode()
	cases := map[string]func(*core.Machine) (core.Verdict, error){
		"checksort": algorithms.CheckSortST,
		"multiset":  algorithms.MultisetEqualityST,
		"set":       algorithms.SetEqualityST,
	}
	for name, fn := range cases {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := core.NewMachine(algorithms.NumDeciderTapes, 1)
				m.SetInput(enc)
				if v, err := fn(m); err != nil || v != core.Accept {
					b.Fatal(err, v)
				}
			}
		})
	}
}
