// Package extmem is a reproduction of "Randomized Computations on
// Large Data Sets: Tight Lower Bounds" by Grohe, Hernich and
// Schweikardt (PODS 2006): the ST model of external-memory
// computation with its two cost measures (sequential scans of
// external devices, internal memory size), the upper-bound algorithms
// of Corollary 7 and Theorems 8(a)/(b), the list-machine proof
// machinery of the Ω(log N) lower bound (Theorem 6), and the query-
// evaluation reductions for relational algebra, XQuery and XPath
// (Theorems 11–13).
//
// The tape device (internal/tape) offers bulk transfer operations
// (ReadBlock, WriteBlock, ScanBytes, ScanUntil, ReadBlockBackward,
// and O(1) Rewind/SeekEnd) next to the single-cell head primitives.
// Bulk ops are performance sugar only: reversal, step, read and write
// accounting is identical to the equivalent sequence of single-cell
// steps, so every resource report — the (r, s, t) quantities the
// paper's classes bound — is unchanged while whole-direction sweeps
// run at memcpy speed. Differential property tests in internal/tape
// enforce this invariant.
//
// Sorting — the workhorse of Corollary 7, the relational evaluator and
// the Las Vegas experiments — runs on the configurable k-way engine
// algorithms.Sorter{FanIn, RunMemoryBits, Dedup}: memory-budgeted run
// formation (runs of ⌊s/itemBits⌋ items instead of single items),
// loser-tree merges of k runs per pass over up to t−2 work tapes
// (⌈log_k⌉ passes instead of ⌈log₂⌉), the counting pre-pass folded
// into the first sweep, and an optional dedup-on-output hook that
// relalg's set semantics use in place of a separate scan + copy-back.
// All engine state is charged to the memory meter, so measured
// resources trace the model's r-vs-(s, t) trade-off (experiment E17).
// Fan-in assignments: the equality deciders sort four-way over tapes
// 3–6; relalg.sortDedup uses its two scratch tapes plus up to two
// free pool tapes; SortLasVegasAuto and the E5 fleet derive fan-in
// t−2 from the machine's tape count. algorithms.MergeSort remains the
// fan-in-2, zero-run-memory legacy wrapper with bitwise-identical
// resource reports (asserted against the historical implementation in
// sorter_test.go).
//
// Monte-Carlo trial fleets — error-rate estimation for the Theorem
// 8(a) fingerprint, Las Vegas repetition, adversary probing, and the
// randomized experiment sweeps — run on internal/trials: a worker-pool
// engine whose per-trial randomness derives from a root seed and the
// trial index via a splitmix64 mixing step, so a fleet produces
// identical results, streaming order and summaries at any worker
// count. Summaries report acceptance rates with Wilson confidence
// intervals, and Result rows stream through text/JSON/CSV encoders
// (surfaced by cmd/stbench -trials/-parallel/-format and the
// cmd/strun fingerprint fleet mode).
//
// Horizontal scale comes from internal/shard, the deterministic
// sharded execution layer, whose contract is that sharding is an
// execution choice, never an observable one. Trial fleets shard by
// disjoint contiguous trial-index ranges: trial i's randomness is a
// pure function of (root seed, global index i), each shard runs its
// own trials engine over its range (trials.Engine.Offset), and an
// in-order merge stream re-interleaves the rows, so results are
// byte-identical at any (shards, parallel) combination. Sorting
// shards at run level, never item level: the fixed-count initial runs
// of the Sorter are partitioned contiguously across shard-local
// machines (each with its own tape set and meter), sorted locally,
// and k-way merged through algorithms.MergeTapes — a sorted multiset
// is canonical, so the output is independent of the shard count,
// while per-shard (r, s, t) reports plus a max/sum rollup keep the
// paper's cost measures auditable per shard (experiment E18).
// cmd/stbench -shards and cmd/strun -shards select the shape.
//
// See README.md for the quickstart and experiment index,
// ARCHITECTURE.md for the layer map, and cmd/stbench for the full
// experiment suite. The packages live under internal/; the runnable
// entry points are cmd/ and examples/.
package extmem
